// Design-space exploration: how many task graphs should a deployment buy?
//
//   $ ./build/examples/design_space [--workload NAME] [--cores N]
//
// Combines the FPGA cost model (Table I: area grows, frequency drops as
// graphs are added) with the performance simulation to find the
// configuration the paper lands on: 6 task graphs, clocked at 55.56 MHz,
// is the best area/performance point for fine-grained workloads — and the
// bench shows why 8 is not better (clock loss eats the parallelism gain).
#include <cstdio>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/cost/fpga_model.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"workload", "trace to optimize for (default h264dec-2x2-10f)"},
                     {"cores", "worker cores (default 64)"}});
  const std::string name = flags.get("workload", "h264dec-2x2-10f");
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 64));
  if (!workloads::is_workload(name)) {
    std::fprintf(stderr, "unknown workload %s\n", name.c_str());
    return 2;
  }

  const Trace trace = workloads::make_workload(name);
  const Tick baseline = harness::ideal_baseline(trace);
  const double ideal =
      static_cast<double>(baseline) /
      static_cast<double>(harness::run_once(trace, harness::ManagerSpec::ideal(), cores));

  std::printf("design space for %s on %u cores (no-overhead bound: %.2fx)\n\n",
              name.c_str(), cores, ideal);
  TextTable t({"TGs", "test MHz", "LUTs", "BRAMs", "speedup", "speedup/LUT%"});
  double best = 0.0;
  std::uint32_t best_tgs = 1;
  for (const std::uint32_t tgs : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const cost::UtilizationRow row = cost::nexussharp_row(tgs);
    const Tick makespan =
        harness::run_once(trace, harness::ManagerSpec::nexussharp(tgs), cores);
    const double speedup =
        static_cast<double>(baseline) / static_cast<double>(makespan);
    if (speedup > best) {
      best = speedup;
      best_tgs = tgs;
    }
    t.add_row({std::to_string(tgs), TextTable::num(row.test_mhz, 2),
               TextTable::num(row.luts_pct, 0) + "%",
               TextTable::num(row.bram_pct, 0) + "%", TextTable::num(speedup, 2),
               TextTable::num(speedup / row.luts_pct, 3)});
  }
  t.print();
  std::printf("\nbest configuration here: %u task graph(s) at %.2f MHz "
              "(the paper selects 6)\n",
              best_tgs, cost::nexussharp_row(best_tgs).test_mhz);
  return 0;
}
