// Causal task-lifecycle tracing walkthrough: run one workload with a
// TraceRecorder attached, export the span graph as a Chrome trace-event
// JSON (load it at ui.perfetto.dev), and print the critical-path
// attribution — which pipeline phase (ingest, dependency resolution,
// writeback, queue wait, dispatch, execute) each picosecond of the
// makespan is charged to. The attribution tiles [0, makespan] exactly, so
// the phase totals always sum to the makespan; this binary exits nonzero
// if they don't.
#include <cstdio>
#include <string>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/noc/topology.hpp"
#include "nexus/telemetry/critical_path.hpp"
#include "nexus/telemetry/trace_export.hpp"
#include "nexus/telemetry/writers.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;

int main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"workload", "workload name (default gaussian-250)"},
       {"manager", "nexus# | nexus++ | ideal (default nexus#)"},
       {"tgs", "Nexus# task-graph count (default 2)"},
       {"cores", "worker cores (default 8)"},
       {"topology", "manager NoC: ideal | ring | mesh | torus (default ideal)"},
       {"out", "write the Chrome trace-event JSON to this file"}});
  const std::string workload = flags.get("workload", "gaussian-250");
  const std::string manager = flags.get("manager", "nexus#");
  const auto tgs = static_cast<std::uint32_t>(flags.get_int("tgs", 2));
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 8));

  if (!workloads::is_workload(workload)) {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 2;
  }
  const Trace trace = workloads::make_workload(workload);

  harness::ManagerSpec spec;
  if (manager == "nexus#") {
    spec = harness::ManagerSpec::nexussharp(tgs, 100.0);
  } else if (manager == "nexus++") {
    spec = harness::ManagerSpec::nexuspp_default();
  } else if (manager == "ideal") {
    spec = harness::ManagerSpec::ideal();
  } else {
    std::fprintf(stderr, "unknown manager: %s\n", manager.c_str());
    return 2;
  }
  if (flags.has("topology")) {
    noc::TopologyKind kind = noc::TopologyKind::kIdeal;
    if (!noc::parse_topology(flags.get("topology", ""), &kind)) {
      std::fprintf(stderr, "unknown topology: %s\n",
                   flags.get("topology", "").c_str());
      return 2;
    }
    spec.sharp.noc.kind = kind;
    spec.npp.noc.kind = kind;
  }

  const harness::RunReport rep = harness::run_once_report(
      trace, spec, cores, {}, /*collect_metrics=*/false,
      /*timeline=*/nullptr, /*collect_trace=*/true);
  const telemetry::TraceData& td = *rep.trace;

  std::printf("== trace: %s on %s, %u cores, %s NoC ==\n", spec.label.c_str(),
              workload.c_str(), cores, rep.topology.c_str());
  std::printf("tasks     %zu spans\n", td.tasks.size());
  std::printf("deps      %zu edges\n", td.deps.size());
  std::printf("noc       %zu messages, %zu link spans\n", td.messages.size(),
              td.link_spans.size());
  std::printf("makespan  %.3f ms\n\n", to_ms(rep.result.makespan));

  const telemetry::CriticalPathReport cp = telemetry::critical_path(td);
  std::fputs(telemetry::critical_path_text(cp).c_str(), stdout);

  // The construction guarantees the segments tile [0, makespan]; check it
  // end-to-end anyway so the example doubles as a smoke test.
  telemetry::TraceTick sum = 0;
  for (const telemetry::PathSegment& s : cp.segments) sum += s.dur();
  const bool ok = sum == td.makespan;
  std::printf("\nattribution sum == makespan: %s\n", ok ? "OK" : "BROKEN");

  if (flags.has("out")) {
    const std::string path = flags.get("out", "");
    if (!telemetry::write_text_file(path, telemetry::chrome_trace_json(td))) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("wrote Chrome trace to %s (open at ui.perfetto.dev)\n",
                path.c_str());
  }
  return ok ? 0 : 1;
}
