// Telemetry walkthrough: run one workload end-to-end against a task
// manager with a MetricRegistry attached and print the full registry tree —
// the per-TGU queue-depth histograms, arbiter grant/conflict counters,
// table fill, DES kernel activity and per-core busy/idle split that explain
// *why* a configuration is fast or slow (the visibility Tables I-IV alone
// don't give). Also demonstrates the JSON/CSV exporters.
//
// The per-core ledger is self-checking: busy + idle must equal the makespan
// on every core, so the report exits nonzero if the books don't balance.
#include <cstdio>
#include <string>

#include "nexus/common/flags.hpp"
#include "nexus/harness/experiment.hpp"
#include "nexus/telemetry/writers.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;

int main(int argc, char** argv) {
  const Flags flags(argc, argv,
                    {{"workload", "workload name (default gaussian-250)"},
                     {"manager", "nexus# | nexus++ | ideal (default nexus#)"},
                     {"tgs", "Nexus# task-graph count (default 6)"},
                     {"cores", "worker cores (default 16)"},
                     {"json", "also write the report as JSON to this file"},
                     {"csv", "also write the snapshot as CSV to this file"}});
  const std::string workload = flags.get("workload", "gaussian-250");
  const std::string manager = flags.get("manager", "nexus#");
  const auto tgs = static_cast<std::uint32_t>(flags.get_int("tgs", 6));
  const auto cores = static_cast<std::uint32_t>(flags.get_int("cores", 16));

  if (!workloads::is_workload(workload)) {
    std::fprintf(stderr, "unknown workload: %s\n", workload.c_str());
    return 2;
  }
  const Trace trace = workloads::make_workload(workload);

  harness::ManagerSpec spec;
  if (manager == "nexus#") {
    spec = harness::ManagerSpec::nexussharp(tgs, 100.0);
  } else if (manager == "nexus++") {
    spec = harness::ManagerSpec::nexuspp_default();
  } else if (manager == "ideal") {
    spec = harness::ManagerSpec::ideal();
  } else {
    std::fprintf(stderr, "unknown manager: %s\n", manager.c_str());
    return 2;
  }

  const Tick baseline = harness::ideal_baseline(trace);
  const harness::RunReport rep =
      harness::run_once_report(trace, spec, cores, {}, /*collect_metrics=*/true);
  const RunResult& r = rep.result;
  const telemetry::Snapshot& snap = *rep.metrics;

  std::printf("== metrics report: %s on %s, %u cores ==\n", spec.label.c_str(),
              workload.c_str(), cores);
  std::printf("tasks     %llu\n", static_cast<unsigned long long>(r.tasks));
  std::printf("makespan  %.3f ms\n", to_ms(r.makespan));
  std::printf("speedup   %.2fx vs ideal single core\n", r.speedup_vs(baseline));
  std::printf("util      %.1f%%  (%llu DES events)\n\n", 100.0 * r.utilization,
              static_cast<unsigned long long>(r.events));
  std::fputs(telemetry::format_tree(snap).c_str(), stdout);

  // The ledger check: every core's busy + idle ticks must reconstruct the
  // makespan exactly (so busy+idle summed over cores == cores * makespan).
  const auto makespan = snap.gauge_at("runtime/makespan_ps");
  bool ok = makespan == r.makespan;
  for (std::uint32_t w = 0; w < cores; ++w) {
    const std::string core = "runtime/core" + std::to_string(w);
    const std::int64_t busy = snap.gauge_at(core + "/busy_ps");
    const std::int64_t idle = snap.gauge_at(core + "/idle_ps");
    if (busy + idle != makespan) {
      std::fprintf(stderr, "core %u ledger broken: %lld busy + %lld idle != %lld\n",
                   w, static_cast<long long>(busy), static_cast<long long>(idle),
                   static_cast<long long>(makespan));
      ok = false;
    }
  }
  std::printf("\ncore ledger: busy+idle == makespan on all %u cores: %s\n", cores,
              ok ? "OK" : "BROKEN");

  if (flags.has("json")) {
    const std::string doc = harness::metrics_report_json(
        "metrics_report", workload, spec.label, cores, r.makespan,
        r.speedup_vs(baseline), &snap);
    if (!telemetry::write_text_file(flags.get("json", ""), doc)) {
      std::fprintf(stderr, "cannot write %s\n", flags.get("json", "").c_str());
      return 2;
    }
    std::printf("wrote JSON report to %s\n", flags.get("json", "").c_str());
  }
  if (flags.has("csv")) {
    if (!telemetry::write_text_file(flags.get("csv", ""),
                                    telemetry::snapshot_csv(snap))) {
      std::fprintf(stderr, "cannot write %s\n", flags.get("csv", "").c_str());
      return 2;
    }
    std::printf("wrote CSV snapshot to %s\n", flags.get("csv", "").c_str());
  }
  return ok ? 0 : 1;
}
