// Trace tooling: generate any built-in workload trace, write it to the
// text format, read it back, and print its statistics — the round trip an
// external consumer of the trace format would perform.
//
//   $ ./build/examples/trace_tools --workload c-ray --out /tmp/cray.trace
//   $ ./build/examples/trace_tools --in /tmp/cray.trace
#include <cstdio>

#include "nexus/common/flags.hpp"
#include "nexus/common/table.hpp"
#include "nexus/task/trace_io.hpp"
#include "nexus/task/trace_stats.hpp"
#include "nexus/workloads/workloads.hpp"

using namespace nexus;

namespace {

void print_stats(const Trace& tr) {
  const TraceStats s = compute_stats(tr);
  TextTable t({"metric", "value"});
  t.add_row({"name", tr.name()});
  t.add_row({"tasks", TextTable::integer(static_cast<long long>(s.num_tasks))});
  t.add_row({"total work (ms)", TextTable::num(s.total_work_ms(), 2)});
  t.add_row({"avg task (us)", TextTable::num(s.avg_task_us(), 2)});
  t.add_row({"params", std::to_string(s.min_params) + "-" + std::to_string(s.max_params)});
  t.add_row({"distinct addresses",
             TextTable::integer(static_cast<long long>(s.distinct_addresses))});
  t.add_row({"taskwait", TextTable::integer(static_cast<long long>(s.num_taskwaits))});
  t.add_row({"taskwait_on",
             TextTable::integer(static_cast<long long>(s.num_taskwait_ons))});
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv, {{"workload", "built-in workload to generate"},
                                 {"out", "write the trace to this file"},
                                 {"in", "read a trace from this file"},
                                 {"list", "list built-in workloads"}});
  if (flags.get_bool("list", false)) {
    for (const auto& n : workloads::workload_names()) std::printf("%s\n", n.c_str());
    return 0;
  }
  if (flags.has("in")) {
    Trace tr;
    std::string err;
    if (!read_trace_file(flags.get("in", ""), &tr, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 1;
    }
    print_stats(tr);
    return 0;
  }
  const std::string name = flags.get("workload", "h264dec-8x8-10f");
  if (!workloads::is_workload(name)) {
    std::fprintf(stderr, "unknown workload %s (use --list)\n", name.c_str());
    return 2;
  }
  const Trace tr = workloads::make_workload(name);
  print_stats(tr);
  if (flags.has("out")) {
    const std::string path = flags.get("out", "");
    if (!write_trace_file(path, tr)) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}
