#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON exported by nexus (trace_export).

Stdlib-only, so CI can gate on trace well-formedness without extra deps:

  python3 scripts/validate_trace.py <trace.json>

Checks:
  1. The document is well-formed JSON: an object with a "traceEvents" array
     and an "otherData" object carrying "makespan_ps".
  2. Events are sorted by timestamp (metadata events excepted) and every
     complete ("X") event has a non-negative duration.
  3. Async lifecycle begins/ends balance per (id, name) pair and no phase
     ends before it begins.
  4. The embedded critical-path attribution tiles [0, makespan] exactly:
     segments are contiguous from 0 to makespan_ps and the per-phase totals
     sum to makespan_ps — the "attribution sums to makespan" invariant.

Exit status: 0 valid, 1 invalid, 2 usage/IO error.
"""
import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = sys.argv[1]
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"validate_trace: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        fail(f"{path} is not well-formed JSON: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("document is not an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents is not a non-empty array")
    other = doc.get("otherData")
    if not isinstance(other, dict) or "makespan_ps" not in other:
        fail("otherData.makespan_ps missing")
    makespan = other["makespan_ps"]

    # --- event stream sanity -------------------------------------------
    last_ts = None
    open_phases = {}  # (id, name) -> open begin count
    n_slices = n_async = n_flows = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"event {i} has no phase type")
        ph = ev["ph"]
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"event {i} ({ev.get('name')}) has bad ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"event {i} ({ev.get('name')}) out of order: "
                 f"ts {ts} after {last_ts}")
        last_ts = ts
        if ph == "X":
            n_slices += 1
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"slice {i} ({ev.get('name')}) has bad dur {dur!r}")
        elif ph in ("b", "e"):
            n_async += 1
            key = (ev.get("id"), ev.get("name"))
            if ph == "b":
                open_phases[key] = open_phases.get(key, 0) + 1
            else:
                if open_phases.get(key, 0) <= 0:
                    fail(f"async end before begin for id={key[0]} "
                         f"phase={key[1]} at ts {ts}")
                open_phases[key] -= 1
        elif ph in ("s", "t", "f"):
            n_flows += 1
    unclosed = {k: v for k, v in open_phases.items() if v != 0}
    if unclosed:
        k, v = next(iter(unclosed.items()))
        fail(f"{len(unclosed)} unbalanced async phase(s), e.g. id={k[0]} "
             f"phase={k[1]} left open {v} time(s)")

    # --- critical-path attribution -------------------------------------
    cp = other.get("critical_path")
    if cp is not None:
        totals = cp.get("totals_ps")
        segments = cp.get("segments")
        if not isinstance(totals, dict) or not isinstance(segments, list):
            fail("critical_path missing totals_ps or segments")
        total = sum(totals.values())
        if total != makespan:
            fail(f"critical-path phase totals sum to {total} ps, "
                 f"not the makespan {makespan} ps")
        at = 0
        seg_totals = {}
        for j, seg in enumerate(segments):
            f_, t_ = seg.get("from_ps"), seg.get("to_ps")
            if f_ != at:
                fail(f"segment {j} starts at {f_} ps, expected {at} ps "
                     f"(segments must tile [0, makespan] contiguously)")
            if t_ < f_:
                fail(f"segment {j} ends before it starts ({t_} < {f_})")
            seg_totals[seg.get("phase")] = \
                seg_totals.get(seg.get("phase"), 0) + (t_ - f_)
            at = t_
        if at != makespan:
            fail(f"segments end at {at} ps, not the makespan {makespan} ps")
        for phase, t in seg_totals.items():
            if totals.get(phase, 0) != t:
                fail(f"phase {phase}: totals_ps says {totals.get(phase, 0)} "
                     f"but segments sum to {t}")

    print(f"validate_trace: OK: {path}: {n_slices} slices, "
          f"{n_async} lifecycle events, {n_flows} flow bindings, "
          f"makespan {makespan} ps"
          + ("" if cp is None else ", critical path tiles exactly"))


if __name__ == "__main__":
    main()
