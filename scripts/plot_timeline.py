#!/usr/bin/env python3
"""Plot nexus timeline JSON/CSV as an SVG chart file.

Stdlib-only. Input is either a BENCH_*.json trajectory file (an array of
records whose optional "timeline" object holds the sampled series — see
docs/METRICS.md), a bare timeline JSON object, or a timeline CSV from
`telemetry::timeline_csv`. Output is a self-contained SVG with one panel
per unit class (queue-depth means, link/NoC utilization, event rates, raw
gauges), so no panel ever mixes two y-scales.

Examples:
  scripts/plot_timeline.py BENCH_topology.json --list
  scripts/plot_timeline.py BENCH_topology.json --record 5 -o topo.svg
  scripts/plot_timeline.py BENCH_fig9.json --workload gaussian-250 \
      --series 'runtime/ready_q_depth*,**/noc/*' -o fig9.svg
"""

import argparse
import fnmatch
import json
import math
import sys

# Categorical palette (fixed assignment order, never cycled) and neutral
# inks, from the repo's chart conventions; swap here to re-brand.
PALETTE = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100",
           "#e87ba4", "#008300", "#4a3aa7", "#e34948"]
SURFACE = "#fcfcfb"
INK = "#0b0b0b"
INK_2 = "#52514e"
GRID = "#e4e3df"
MAX_SERIES_PER_PANEL = 8


def fail(msg):
    print("plot_timeline: " + msg, file=sys.stderr)
    raise SystemExit(2)


def delta_decode(values):
    out, acc = [], 0
    for i, v in enumerate(values):
        acc = v if i == 0 else acc + v
        out.append(acc)
    return out


def timeline_from_json(obj):
    """Decode a timeline JSON object into (t, [(path, kind, values)])."""
    delta = obj.get("encoding", "raw") == "delta"
    t = obj["t"]
    if delta:
        t = delta_decode(t)
    series = []
    for path, s in obj.get("series", {}).items():
        v = s["v"]
        if delta and s.get("kind") == "counter":
            v = delta_decode(v)
        series.append((path, s.get("kind", "counter"), v))
    return t, series


def load_records(path):
    """Yield (label, timeline-object) pairs from a BENCH/timeline JSON file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if isinstance(doc, dict) and "series" in doc and "t" in doc:
        return [("timeline", doc)]
    records = doc if isinstance(doc, list) else [doc]
    out = []
    for rec in records:
        if not isinstance(rec, dict) or "timeline" not in rec:
            continue
        label = "{} {} {} {}c".format(
            rec.get("workload", "?"), rec.get("manager", "?"),
            rec.get("topology", "ideal"), rec.get("cores", "?"))
        out.append((label, rec["timeline"], rec))
    return out


def load_csv(path):
    with open(path, "r", encoding="utf-8") as f:
        rows = [line.rstrip("\n").split(",") for line in f if line.strip()]
    if not rows or rows[0][0] != "t_ps":
        fail("CSV input must start with a t_ps header column")
    header = rows[0]
    cols = list(zip(*[[int(c) for c in r] for r in rows[1:]]))
    t = list(cols[0])
    # CSV is raw/undecoded; kinds are unknown — infer counter-ness from
    # monotonicity so rates are derived the same way as from JSON. A series
    # that never moves carries a level, not activity: treat it as a gauge so
    # it plots as its value rather than an all-zero rate.
    series = []
    for i, path in enumerate(header[1:], start=1):
        v = list(cols[i])
        monotone = all(b >= a for a, b in zip(v, v[1:]))
        kind = "counter" if monotone and v and v[-1] > v[0] else "gauge"
        series.append((path, kind, v))
    return t, series


def windowed(values):
    return [b - a for a, b in zip(values, values[1:])]


def derive_panels(t, series, globs):
    """Group decoded series into unit-class panels of plottable lines."""
    selected = [s for s in series
                if not globs or any(fnmatch.fnmatch(s[0], g) for g in globs)]
    by_path = {p: (k, v) for p, k, v in selected}
    dt = windowed(t)
    mid_t = t[1:]
    panels = {"mean depth": [], "utilization": [], "rate /ms": [], "gauge": []}
    done = set()
    for path, kind, v in selected:
        if path in done:
            continue
        if path.endswith(":sum") and path[:-4] + ":count" in by_path:
            base = path[:-4]
            dc = windowed(by_path[base + ":count"][1])
            ds = windowed(v)
            mean = [s / c if c else 0.0 for s, c in zip(ds, dc)]
            panels["mean depth"].append((base, mid_t, mean))
            done.update((path, base + ":count"))
        elif path.endswith(":count") and path[:-6] + ":sum" in by_path:
            continue  # handled with its :sum twin
        elif kind == "counter" and path.endswith("_ps"):
            util = [min(1.0, d / w) if w else 0.0
                    for d, w in zip(windowed(v), dt)]
            panels["utilization"].append((path, mid_t, util))
            done.add(path)
        elif kind == "counter":
            rate = [d / (w * 1e-9) if w else 0.0
                    for d, w in zip(windowed(v), dt)]
            panels["rate /ms"].append((path, mid_t, rate))
            done.add(path)
        else:
            panels["gauge"].append((path, t, [float(x) for x in v]))
            done.add(path)
    out = []
    for name, lines in panels.items():
        if not lines:
            continue
        if len(lines) > MAX_SERIES_PER_PANEL:
            print("plot_timeline: panel '{}' capped at {} of {} series"
                  .format(name, MAX_SERIES_PER_PANEL, len(lines)),
                  file=sys.stderr)
            lines = lines[:MAX_SERIES_PER_PANEL]
        out.append((name, lines))
    return out


def nice_ticks(lo, hi, n=4):
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / n))
    for mult in (1, 2, 5, 10):
        if span / (step * mult) <= n:
            step *= mult
            break
    first = step * math.ceil(lo / step)
    ticks, v = [], first
    while v <= hi + 1e-9 * span:
        ticks.append(v)
        v += step
    return ticks


def fmt(v):
    if v == 0:
        return "0"
    if abs(v) >= 1e6:
        return "{:.3g}M".format(v / 1e6)
    if abs(v) >= 1e3:
        return "{:.3g}k".format(v / 1e3)
    if abs(v) < 0.01:
        return "{:.1e}".format(v)
    return "{:.3g}".format(v)


def esc(s):
    return s.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def render_svg(title, panels, width):
    pad_l, pad_r, pad_top, panel_h, legend_row = 64, 16, 34, 150, 16
    parts = []
    y_off = pad_top
    body = []
    for name, lines in panels:
        t_max = max(max(tt) for _, tt, _ in lines) or 1
        v_max = max((max(vv) if vv else 0.0) for _, _, vv in lines) or 1.0
        plot_w = width - pad_l - pad_r
        plot_h = panel_h - 28
        x0, y0 = pad_l, y_off + 16
        body.append('<text x="{}" y="{}" fill="{}" font-size="11" '
                    'font-weight="600">{}</text>'
                    .format(pad_l, y_off + 8, INK, esc(name)))
        # Recessive grid + y tick labels.
        for tick in nice_ticks(0.0, v_max):
            y = y0 + plot_h - tick / v_max * plot_h
            body.append('<line x1="{}" y1="{:.1f}" x2="{}" y2="{:.1f}" '
                        'stroke="{}" stroke-width="1"/>'
                        .format(x0, y, x0 + plot_w, y, GRID))
            body.append('<text x="{}" y="{:.1f}" fill="{}" font-size="9" '
                        'text-anchor="end">{}</text>'
                        .format(x0 - 4, y + 3, INK_2, fmt(tick)))
        for i, (path, tt, vv) in enumerate(lines):
            pts = " ".join("{:.1f},{:.1f}".format(
                x0 + t / t_max * plot_w,
                y0 + plot_h - (v / v_max) * plot_h)
                for t, v in zip(tt, vv))
            body.append('<polyline points="{}" fill="none" stroke="{}" '
                        'stroke-width="2" stroke-linejoin="round"/>'
                        .format(pts, PALETTE[i]))
        # x axis (time in ms) under the panel.
        body.append('<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" '
                    'stroke-width="1"/>'.format(x0, y0 + plot_h, x0 + plot_w,
                                                y0 + plot_h, INK_2))
        for tick in nice_ticks(0.0, t_max * 1e-9):
            x = x0 + (tick / (t_max * 1e-9)) * plot_w
            body.append('<text x="{:.1f}" y="{}" fill="{}" font-size="9" '
                        'text-anchor="middle">{}ms</text>'
                        .format(x, y0 + plot_h + 11, INK_2, fmt(tick)))
        # Legend: one marker + label per series, text in neutral ink.
        ly = y0 + plot_h + 24
        lx = x0
        for i, (path, _, _) in enumerate(lines):
            body.append('<rect x="{}" y="{}" width="8" height="8" rx="2" '
                        'fill="{}"/>'.format(lx, ly - 7, PALETTE[i]))
            label = esc(path)
            body.append('<text x="{}" y="{}" fill="{}" font-size="9">{}'
                        '</text>'.format(lx + 11, ly, INK_2, label))
            lx += 14 + 6 * len(path)
            if lx > width - 140 and i + 1 < len(lines):
                lx, ly = x0, ly + legend_row
        y_off = ly + 22
    height = y_off + 6
    parts.append('<svg xmlns="http://www.w3.org/2000/svg" width="{w}" '
                 'height="{h}" viewBox="0 0 {w} {h}" font-family="system-ui, '
                 'sans-serif">'.format(w=width, h=height))
    parts.append('<rect width="{}" height="{}" fill="{}"/>'
                 .format(width, height, SURFACE))
    parts.append('<text x="{}" y="16" fill="{}" font-size="12" '
                 'font-weight="600">{}</text>'.format(pad_l, INK, esc(title)))
    parts.extend(body)
    parts.append("</svg>")
    return "\n".join(parts)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", help="BENCH_*.json, timeline JSON, or timeline CSV")
    ap.add_argument("-o", "--out", default="timeline.svg")
    ap.add_argument("--list", action="store_true",
                    help="list records with timelines and exit")
    ap.add_argument("--record", type=int, default=None,
                    help="record index within a BENCH_*.json array")
    ap.add_argument("--workload")
    ap.add_argument("--manager")
    ap.add_argument("--topology")
    ap.add_argument("--cores", type=int)
    ap.add_argument("--series", default="",
                    help="comma-separated fnmatch globs over series paths")
    ap.add_argument("--width", type=int, default=760)
    args = ap.parse_args()

    if args.input.endswith(".csv"):
        t, series = load_csv(args.input)
        title = args.input
    else:
        records = load_records(args.input)
        if not records:
            fail("no timeline found in " + args.input +
                 " (run the bench with --timeline)")
        if args.list:
            for i, rec in enumerate(records):
                print("{:3d}  {}".format(i, rec[0]))
            return
        chosen = None
        if args.record is not None:
            if not 0 <= args.record < len(records):
                fail("--record out of range (0..{})".format(len(records) - 1))
            chosen = records[args.record]
        else:
            for rec in records:
                meta = rec[2] if len(rec) > 2 else {}
                if args.workload and meta.get("workload") != args.workload:
                    continue
                if args.manager and meta.get("manager") != args.manager:
                    continue
                if args.topology and \
                        meta.get("topology", "ideal") != args.topology:
                    continue
                if args.cores is not None and meta.get("cores") != args.cores:
                    continue
                chosen = rec
                break
            if chosen is None:
                fail("no record matches the given filters (try --list)")
        title = chosen[0]
        t, series = timeline_from_json(chosen[1])

    if len(t) < 2:
        fail("timeline has fewer than two samples")
    globs = [g for g in args.series.split(",") if g]
    panels = derive_panels(t, series, globs)
    if not panels:
        fail("no series selected (check --series globs)")
    svg = render_svg(title, panels, args.width)
    with open(args.out, "w", encoding="utf-8") as f:
        f.write(svg)
    n = sum(len(lines) for _, lines in panels)
    print("wrote {} ({} panel(s), {} series)".format(args.out, len(panels), n))


if __name__ == "__main__":
    main()
