#!/usr/bin/env python3
"""Validate a host-side self-profile exported by nexus-prof / profile_json.

Stdlib-only, so CI can gate on profile well-formedness without extra deps:

  python3 scripts/validate_profile.py <profile.json> [--tolerance-pct P]

Accepts either a single profile document ({"schema":1,...,"tree":...}) or
the nexus-prof grid format (a JSON array of cells, each carrying a
"profile" field with such a document).

Checks, per profile:
  1. The document is well-formed: schema 1, unit "ns", a "tree" object
     whose nodes carry name/self_ns/total_ns/count (non-negative ints).
  2. The exclusion-ledger invariant holds *exactly*: every node's total_ns
     equals self_ns plus the sum of its children's total_ns (so each
     measured nanosecond lands in exactly one node and a child can never
     exceed its parent).
  3. Sibling names are unique and sorted (the deterministic-shape
     contract: the same run produces the same document shape).
  4. The root total reconciles with the independently measured wall time
     ("wall_ns") within the tolerance (default 5%) — the profiler's clock
     calibration is checked against a second clock, not against itself.

Exit status: 0 valid, 1 invalid, 2 usage/IO error.
"""
import json
import sys


def fail(msg):
    print(f"validate_profile: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_node(node, path, stats):
    """Recursively check one tree node; returns its total_ns."""
    if not isinstance(node, dict):
        fail(f"{path}: node is not an object")
    name = node.get("name")
    if not isinstance(name, str) or not name:
        fail(f"{path}: missing or empty name")
    here = f"{path};{name}" if path else name
    for field in ("self_ns", "total_ns", "count"):
        v = node.get(field)
        if not isinstance(v, int) or v < 0:
            fail(f"{here}: {field} is not a non-negative integer: {v!r}")
    children = node.get("children", [])
    if not isinstance(children, list):
        fail(f"{here}: children is not an array")
    child_names = []
    child_total = 0
    for child in children:
        child_total += check_node(child, here, stats)
        child_names.append(child["name"])
    if child_names != sorted(child_names):
        fail(f"{here}: children are not name-sorted: {child_names}")
    if len(set(child_names)) != len(child_names):
        fail(f"{here}: duplicate sibling names: {child_names}")
    if node["self_ns"] + child_total != node["total_ns"]:
        fail(
            f"{here}: total_ns {node['total_ns']} != self_ns "
            f"{node['self_ns']} + children {child_total}"
        )
    stats["nodes"] += 1
    return node["total_ns"]


def check_profile(doc, label, tolerance_pct):
    if not isinstance(doc, dict):
        fail(f"{label}: profile is not an object")
    if doc.get("schema") != 1:
        fail(f"{label}: unknown profile schema: {doc.get('schema')!r}")
    if doc.get("unit") != "ns":
        fail(f"{label}: unit is not ns: {doc.get('unit')!r}")
    tree = doc.get("tree")
    if not isinstance(tree, dict):
        fail(f"{label}: missing tree object")
    if tree.get("name") != "all":
        fail(f"{label}: root node is not named 'all': {tree.get('name')!r}")

    stats = {"nodes": 0}
    root_total = check_node(tree, "", stats)

    wall = doc.get("wall_ns", 0)
    if not isinstance(wall, int) or wall < 0:
        fail(f"{label}: wall_ns is not a non-negative integer: {wall!r}")
    if wall > 0 and root_total > 0:
        drift_pct = abs(root_total - wall) / wall * 100.0
        if drift_pct > tolerance_pct:
            fail(
                f"{label}: root total {root_total} ns does not reconcile "
                f"with measured wall {wall} ns (drift {drift_pct:.2f}% > "
                f"{tolerance_pct}%)"
            )
    else:
        drift_pct = 0.0
    print(
        f"validate_profile: {label}: OK — {stats['nodes']} nodes, root "
        f"{root_total} ns, measured wall {wall} ns "
        f"(drift {drift_pct:.2f}%)"
    )


def main():
    args = sys.argv[1:]
    tolerance_pct = 5.0
    if "--tolerance-pct" in args:
        i = args.index("--tolerance-pct")
        try:
            tolerance_pct = float(args[i + 1])
        except (IndexError, ValueError):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        del args[i : i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    path = args[0]
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"validate_profile: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        fail(f"{path} is not well-formed JSON: {e}")

    if isinstance(doc, list):
        # nexus-prof grid: one cell per (workload, manager, topology, cores).
        if not doc:
            fail("grid document is an empty array")
        for i, cell in enumerate(doc):
            if not isinstance(cell, dict) or "profile" not in cell:
                fail(f"cell {i} has no profile field")
            key = "|".join(
                str(cell.get(k, "?"))
                for k in ("workload", "manager", "topology", "cores")
            )
            check_profile(cell["profile"], key, tolerance_pct)
    else:
        check_profile(doc, path, tolerance_pct)


if __name__ == "__main__":
    main()
