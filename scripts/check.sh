#!/usr/bin/env bash
# Tier-1 verification entrypoint: configure + build + ctest.
#
# Usage:
#   scripts/check.sh                 # plain RelWithDebInfo build + all tests
#   scripts/check.sh --sanitize      # additional ASan/UBSan build + all tests
#   scripts/check.sh --label unit    # run only suites with the given CTest label
#   scripts/check.sh --bench         # additionally smoke-run every bench binary
#                                    # (quick traces) and regenerate the
#                                    # BENCH_*.json trajectory records
#   scripts/check.sh --diff          # --bench, then nexus-perfdiff each
#                                    # regenerated BENCH_*.json against the
#                                    # pre-run copy (nonzero on regression)
#   scripts/check.sh --trace         # additionally export a fig9 Chrome
#                                    # trace and validate it with
#                                    # scripts/validate_trace.py
#   scripts/check.sh --prof          # additionally run nexus-prof on the
#                                    # fig9 workload, validate the profile
#                                    # with scripts/validate_profile.py, and
#                                    # smoke the attached-overhead bound
#
# Exit code is nonzero if any configure, build, test, smoke, or diff step
# fails.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=0
BENCH=0
DIFF=0
TRACE=0
PROF=0
LABEL=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --sanitize) SANITIZE=1 ;;
    --bench) BENCH=1 ;;
    --diff) BENCH=1; DIFF=1 ;;
    --trace) TRACE=1 ;;
    --prof) PROF=1 ;;
    --label) LABEL="${2:?--label needs an argument (unit|integration)}"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

BENCH_RECORDS=(BENCH_table2.json BENCH_fig7.json BENCH_fig8.json BENCH_fig9.json
               BENCH_topology.json BENCH_placement.json BENCH_simspeed.json
               BENCH_serving.json BENCH_tenancy.json)

JOBS="$(nproc 2>/dev/null || echo 2)"
CTEST_ARGS=(--output-on-failure --no-tests=error -j "${JOBS}")
if [[ -n "${LABEL}" ]]; then
  CTEST_ARGS+=(-L "${LABEL}")
fi

run_pass() {
  local dir="$1"; shift
  echo "==> configure: ${dir} ($*)"
  cmake -B "${dir}" -S . "$@"
  echo "==> build: ${dir}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> ctest: ${dir}"
  ctest --test-dir "${dir}" "${CTEST_ARGS[@]}"
}

# Pin the canonical options so a developer's cached -D overrides (e.g.
# NEXUS_WERROR=OFF while iterating) can't silently weaken the tier-1 gate.
run_pass build -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNEXUS_SANITIZE=OFF -DNEXUS_WERROR=ON

echo "==> docs link check"
scripts/docs_link_check.sh

if [[ "${SANITIZE}" -eq 1 ]]; then
  run_pass build-asan -DNEXUS_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
fi

if [[ "${BENCH}" -eq 1 ]]; then
  # With --diff, stash the pre-run (normally: committed) record files so the
  # regenerated ones can be compared against them afterwards.
  BASE_DIR=build/perfdiff-baseline
  if [[ "${DIFF}" -eq 1 ]]; then
    rm -rf "${BASE_DIR}"
    mkdir -p "${BASE_DIR}"
    for f in "${BENCH_RECORDS[@]}"; do
      # Plain `[[ -f ]] &&` would fail the errexit shell when the *last*
      # record is a brand-new file with no committed baseline yet.
      if [[ -f "${f}" ]]; then cp "${f}" "${BASE_DIR}/${f}"; fi
    done
  fi

  # Smoke-run every bench/example binary on its quickest configuration so
  # bench bit-rot fails here instead of lingering until someone reproduces a
  # paper figure. Output is discarded; a nonzero exit fails the check.
  echo "==> bench smoke (quick traces)"
  B=build/bench
  E=build/examples
  smoke() { echo "--> $*"; "$@" >/dev/null; }
  smoke "${B}/micro_5tasks"
  smoke "${B}/table1_utilization"
  smoke "${B}/table3_gaussian" --skip-3000
  smoke "${B}/table4_max_speedup" --quick
  smoke "${B}/fig7_h264_tg_scaling" --quick
  smoke "${B}/fig8_starbench" --quick
  smoke "${B}/fig9_gaussian_speedup" --quick
  smoke "${B}/ablation_arbiter" --quick
  smoke "${B}/ablation_distribution" --quick
  smoke "${B}/ablation_placement" --quick
  smoke "${B}/ablation_pool_window" --quick
  smoke "${B}/ablation_serving" --quick
  smoke "${B}/ablation_tenancy" --quick
  smoke "${B}/ablation_topology" --quick
  smoke "${B}/multiapp" --quick
  smoke "${B}/power_energy"
  smoke "${E}/metrics_report" --workload gaussian-250 --cores 8
  # The machine-readable trajectory records: Table II plus the fig7/8/9
  # speedup benches with sampled sim-time timelines attached.
  smoke "${B}/table2_workloads" --json BENCH_table2.json
  smoke "${B}/fig7_h264_tg_scaling" --quick --json BENCH_fig7.json --timeline
  smoke "${B}/fig8_starbench" --quick --json BENCH_fig8.json --timeline
  smoke "${B}/fig9_gaussian_speedup" --quick --json BENCH_fig9.json --timeline
  smoke "${B}/ablation_topology" --quick --json BENCH_topology.json --timeline
  smoke "${B}/ablation_placement" --quick --json BENCH_placement.json --timeline
  smoke "${B}/simspeed" --prof --json BENCH_simspeed.json
  smoke "${B}/ablation_serving" --quick --json BENCH_serving.json
  smoke "${B}/ablation_tenancy" --quick --json BENCH_tenancy.json
  echo "==> wrote ${BENCH_RECORDS[*]}"

  if [[ "${DIFF}" -eq 1 ]]; then
    echo "==> perfdiff vs pre-run baselines"
    for f in "${BENCH_RECORDS[@]}"; do
      if [[ -f "${BASE_DIR}/${f}" ]]; then
        echo "--> nexus-perfdiff ${f}"
        build/tools/nexus-perfdiff --quiet "${BASE_DIR}/${f}" "${f}"
      else
        echo "--> ${f}: no baseline to diff against (new record file)"
      fi
    done
  fi
fi

if [[ "${TRACE}" -eq 1 ]]; then
  # Export one representative lifecycle trace and validate it: JSON
  # well-formed, events sorted, async phases balanced, and the embedded
  # critical-path attribution tiling [0, makespan] exactly.
  echo "==> trace smoke (fig9 Chrome trace export + validation)"
  build/bench/fig9_gaussian_speedup --trace build/trace_fig9.json
  python3 scripts/validate_trace.py build/trace_fig9.json
fi

if [[ "${PROF}" -eq 1 ]]; then
  # Profile the fig9 workload (the finest-grained run the paper has) and
  # validate the frozen tree's reconciliation invariants: self >= 0
  # everywhere, total == self + children exactly, and the root total within
  # tolerance of the independently measured wall time.
  echo "==> profile smoke (nexus-prof on fig9 + validation)"
  build/tools/nexus-prof --workloads=gaussian-250 --managers='nexus#-2TG' \
    --topologies=ideal --cores=8 --json build/profile_fig9.json \
    --collapsed build/profile_fig9.collapsed >/dev/null
  python3 scripts/validate_profile.py build/profile_fig9.json
  # Attached-overhead smoke. Per-scope instrumentation costs two clock
  # reads (~30 ns here) against ~50 ns/event of simulated work, so an
  # attached run lands near 2x wall on this finest-grained workload; the
  # generous bound is there to catch pathological regressions (a syscall or
  # allocation sneaking onto the hot path), not to pretend attribution is
  # free. Detached overhead is the contract that must stay at zero, and
  # that one is gated bit-exactly by profiler_test.
  echo "==> profiler attached-overhead smoke (simspeed --prof)"
  build/bench/simspeed --events=200000 --inflight=100000 --workloads=none \
    --prof --max-overhead-pct=400 >/dev/null
fi

echo "==> all checks passed"
