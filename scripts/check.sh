#!/usr/bin/env bash
# Tier-1 verification entrypoint: configure + build + ctest.
#
# Usage:
#   scripts/check.sh                 # plain RelWithDebInfo build + all tests
#   scripts/check.sh --sanitize      # additional ASan/UBSan build + all tests
#   scripts/check.sh --label unit    # run only suites with the given CTest label
#
# Exit code is nonzero if any configure, build, or test step fails.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=0
LABEL=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --sanitize) SANITIZE=1 ;;
    --label) LABEL="${2:?--label needs an argument (unit|integration)}"; shift ;;
    *) echo "unknown option: $1" >&2; exit 2 ;;
  esac
  shift
done

JOBS="$(nproc 2>/dev/null || echo 2)"
CTEST_ARGS=(--output-on-failure --no-tests=error -j "${JOBS}")
if [[ -n "${LABEL}" ]]; then
  CTEST_ARGS+=(-L "${LABEL}")
fi

run_pass() {
  local dir="$1"; shift
  echo "==> configure: ${dir} ($*)"
  cmake -B "${dir}" -S . "$@"
  echo "==> build: ${dir}"
  cmake --build "${dir}" -j "${JOBS}"
  echo "==> ctest: ${dir}"
  ctest --test-dir "${dir}" "${CTEST_ARGS[@]}"
}

# Pin the canonical options so a developer's cached -D overrides (e.g.
# NEXUS_WERROR=OFF while iterating) can't silently weaken the tier-1 gate.
run_pass build -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNEXUS_SANITIZE=OFF -DNEXUS_WERROR=ON

if [[ "${SANITIZE}" -eq 1 ]]; then
  run_pass build-asan -DNEXUS_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug
fi

echo "==> all checks passed"
