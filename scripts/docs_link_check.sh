#!/usr/bin/env bash
# Verify that relative markdown links in README.md and docs/*.md point at
# files that exist, so docs cross-references cannot silently rot. External
# links (http/https) and pure #anchors are skipped; a "path#anchor" link is
# checked for the path part only.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/*.md; do
  [[ -f "${doc}" ]] || continue
  dir="$(dirname "${doc}")"
  # Extract every](target) markdown link target.
  while IFS= read -r target; do
    case "${target}" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [[ -n "${path}" ]] || continue
    # Links are resolved relative to the file that contains them.
    if [[ ! -e "${dir}/${path}" && ! -e "${path}" ]]; then
      echo "broken link in ${doc}: ${target}" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "${doc}" | sed -E 's/^\]\(//; s/\)$//')
done

if [[ "${fail}" -ne 0 ]]; then
  echo "docs link check FAILED" >&2
  exit 1
fi
echo "docs link check OK"
